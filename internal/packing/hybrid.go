package packing

import (
	"fmt"

	"dbp/internal/bins"
)

// classify returns the size class of an arrival under harmonic-style
// boundaries with k classes: class i (0-based, i < k-1) holds sizes in
// (1/(i+2), 1/(i+1)], and the last class holds all remaining small sizes
// in (0, 1/k]. With k = 2 this is the large/small split at 1/2 used by the
// paper's analysis (Sec. V classifies items at size 1/2).
func classify(size float64, k int) int {
	for i := 0; i < k-1; i++ {
		if size > 1.0/float64(i+2) {
			return i
		}
	}
	return k - 1
}

// HybridFirstFit is the size-classifying First Fit family from the
// authors' earlier work (Li, Tang, Cai, SPAA'14 / TPDS'16), cited by the
// paper for its 8/7*mu + O(1) competitive ratio. Items are partitioned
// into k size classes with harmonic boundaries (k=2: large > 1/2 vs small
// <= 1/2); each class is packed by First Fit into its own pool of bins, so
// bins never mix classes. Classifying by size bounds the wasted capacity
// of each bin: a bin of class i (holding sizes in (1/(i+2), 1/(i+1)])
// reaches level > (i+1)/(i+2) whenever it refuses an item of its class.
//
// The per-class membership is policy state the shared index knows nothing
// about, so Place scans the open list — the linear path — filtering by
// class.
//
// The variant is semi-online in the same sense as the paper's Sec. II
// remark: choosing k to optimize the bound requires knowing mu a priori.
// This implementation documents itself as the classification scheme; the
// exact constant of [5]'s analysis is not claimed.
type HybridFirstFit struct {
	k     int
	class map[*bins.Bin]int
	// pending remembers the class of the arrival for which Place returned
	// nil, so BinOpened can tag the new bin.
	pending int
}

// NewHybridFirstFit returns a Hybrid First Fit policy with k >= 2 size
// classes. k = 2 reproduces the large/small split at 1/2.
func NewHybridFirstFit(k int) *HybridFirstFit {
	if k < 2 {
		panic("packing: HybridFirstFit needs k >= 2 classes")
	}
	return &HybridFirstFit{k: k, class: make(map[*bins.Bin]int), pending: -1}
}

// Name implements Algorithm.
func (h *HybridFirstFit) Name() string { return fmt.Sprintf("HybridFirstFit(k=%d)", h.k) }

// Place applies First Fit within the arrival's size class.
func (h *HybridFirstFit) Place(a Arrival, f Fleet) *bins.Bin {
	c := classify(a.Size, h.k)
	for _, b := range f.Open() {
		if h.class[b] == c && fits(b, a) {
			return b
		}
	}
	h.pending = c
	return nil
}

// BinOpened tags the freshly opened bin with the pending arrival's class.
func (h *HybridFirstFit) BinOpened(b *bins.Bin) {
	h.class[b] = h.pending
	h.pending = -1
}

// Reset implements Algorithm.
func (h *HybridFirstFit) Reset() {
	h.class = make(map[*bins.Bin]int)
	h.pending = -1
}

// SaveState implements StatefulAlgorithm: the class tag of every open
// tagged bin, by index. Closed bins' tags are dropped (Place only ever
// consults tags of bins on the open list), and pending is never saved —
// it is -1 between events by construction (BinOpened consumes it within
// the same arrival that set it).
func (h *HybridFirstFit) SaveState() PolicyState {
	st := PolicyState{}
	for b, c := range h.class {
		if b.IsOpen() {
			if st.Class == nil {
				st.Class = make(map[int]int)
			}
			st.Class[b.Index] = c
		}
	}
	return st
}

// RestoreState implements StatefulAlgorithm.
func (h *HybridFirstFit) RestoreState(st PolicyState, bin func(int) *bins.Bin) error {
	h.class = make(map[*bins.Bin]int, len(st.Class))
	h.pending = -1
	for i, c := range st.Class {
		if c < 0 || c >= h.k {
			return fmt.Errorf("HybridFirstFit(k=%d) state tags server %d with class %d", h.k, i, c)
		}
		b := bin(i)
		if b == nil {
			return fmt.Errorf("HybridFirstFit state names unknown open server %d", i)
		}
		h.class[b] = c
	}
	return nil
}

// HybridNextFit applies Next Fit within each of k harmonic size classes —
// the classify-then-Next-Fit scheme Kamali & López-Ortiz analyze (cited in
// Sec. II of the paper as achieving 2mu + O(1) semi-online). One bin per
// class is available at any time.
type HybridNextFit struct {
	k         int
	available []*bins.Bin
	pending   int
}

// NewHybridNextFit returns a Hybrid Next Fit policy with k >= 2 classes.
func NewHybridNextFit(k int) *HybridNextFit {
	if k < 2 {
		panic("packing: HybridNextFit needs k >= 2 classes")
	}
	return &HybridNextFit{k: k, available: make([]*bins.Bin, k), pending: -1}
}

// Name implements Algorithm.
func (h *HybridNextFit) Name() string { return fmt.Sprintf("HybridNextFit(k=%d)", h.k) }

// Place puts the arrival in its class's available bin if possible.
func (h *HybridNextFit) Place(a Arrival, f Fleet) *bins.Bin {
	c := classify(a.Size, h.k)
	if b := h.available[c]; b != nil && b.IsOpen() && fits(b, a) {
		return b
	}
	h.available[c] = nil
	h.pending = c
	return nil
}

// BinOpened records the new bin as its class's available bin.
func (h *HybridNextFit) BinOpened(b *bins.Bin) {
	h.available[h.pending] = b
	h.pending = -1
}

// Reset implements Algorithm.
func (h *HybridNextFit) Reset() {
	h.available = make([]*bins.Bin, h.k)
	h.pending = -1
}

// SaveState implements StatefulAlgorithm: one slot per class, the open
// available bin's index or -1. A closed slot is saved as -1, matching
// Place's own treatment of a closed available bin.
func (h *HybridNextFit) SaveState() PolicyState {
	st := PolicyState{Bins: make([]int, h.k)}
	for c, b := range h.available {
		st.Bins[c] = -1
		if b != nil && b.IsOpen() {
			st.Bins[c] = b.Index
		}
	}
	return st
}

// RestoreState implements StatefulAlgorithm.
func (h *HybridNextFit) RestoreState(st PolicyState, bin func(int) *bins.Bin) error {
	if len(st.Bins) != h.k {
		return fmt.Errorf("HybridNextFit(k=%d) state has %d class slots", h.k, len(st.Bins))
	}
	h.available = make([]*bins.Bin, h.k)
	h.pending = -1
	for c, i := range st.Bins {
		if i < 0 {
			continue
		}
		b := bin(i)
		if b == nil {
			return fmt.Errorf("HybridNextFit state names unknown open server %d", i)
		}
		h.available[c] = b
	}
	return nil
}

package packing

import (
	"math"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// Stream is the online dispatching interface matching the paper's cloud
// scenario: jobs arrive one at a time with unknown departure times, the
// caller is told which server (bin) each job was assigned to, and later
// reports departures. It is what a cloud-gaming provider's dispatcher
// would embed; Run is a convenience wrapper over the same mechanics for
// instances whose departures are known to the simulator.
//
// Time must be fed in non-decreasing order across Arrive and Depart calls.
type Stream struct {
	algo   Algorithm
	ledger *bins.Ledger
	now    float64
	nEvent int
}

// ErrServer is the server index Arrive and Depart return alongside a
// non-nil error. Real server indices start at 0, so a caller that stores
// the index before checking the error can never mistake a failed call for
// an assignment to the first server.
const ErrServer = -1

// NewStream creates a dispatcher using the given policy. The policy is
// Reset. dim is the resource dimensionality (1 for the scalar problem);
// capacity 0 means unit capacity.
func NewStream(algo Algorithm, capacity float64, dim int) *Stream {
	return NewStreamKeepAlive(algo, capacity, dim, 0)
}

// NewStreamKeepAlive is NewStream with lingering servers: an emptied
// server stays open (reusable) for keepAlive time units before shutting
// down, mirroring Options.KeepAlive for batch runs. Expiries are
// processed as the stream's clock advances.
func NewStreamKeepAlive(algo Algorithm, capacity float64, dim int, keepAlive float64) *Stream {
	if capacity == 0 {
		capacity = 1
	}
	if dim == 0 {
		dim = 1
	}
	algo.Reset()
	return &Stream{algo: algo, ledger: bins.NewLedgerKeepAlive(capacity, dim, keepAlive)}
}

// Arrive dispatches a job with the given demand at time t and returns the
// index of the server it was assigned to, plus whether a new server was
// opened for it. sizes carries the vector demand for multi-dimensional
// streams and must be nil for 1-D streams.
//
// On error the returned server index is ErrServer (-1), which no real
// server ever carries — server 0 is a legitimate assignment, so callers
// that record indices before checking err cannot confuse the two.
func (s *Stream) Arrive(id item.ID, size float64, sizes []float64, t float64) (server int, opened bool, err error) {
	if err := s.advance(t); err != nil {
		return ErrServer, false, err
	}
	if s.ledger.Locate(id) != nil {
		return ErrServer, false, failf(ErrDuplicateJob, "packing: job %d already running", id)
	}
	it := item.Item{ID: id, Size: size, Sizes: sizes, Arrival: t, Departure: math.Inf(1)}
	if !(size > 0) || size > s.ledger.Capacity()+bins.Eps {
		return ErrServer, false, failf(ErrBadDemand, "packing: job %d size %g cannot fit any server of capacity %g", id, size, s.ledger.Capacity())
	}
	if it.Dim() != s.ledger.Dim() {
		return ErrServer, false, failf(ErrBadDemand, "packing: job %d has dim %d, stream has dim %d", id, it.Dim(), s.ledger.Dim())
	}
	// The scalar check above only constrains size; a vector demand with a
	// single oversized (or negative / NaN) component would sail past it
	// and panic inside Bin.Place, so admit per dimension here.
	for d, c := range sizes {
		if !(c >= 0) || c > s.ledger.Capacity()+bins.Eps {
			return ErrServer, false, failf(ErrBadDemand, "packing: job %d demand %g in dim %d cannot fit any server of capacity %g", id, c, d, s.ledger.Capacity())
		}
	}
	b := s.algo.Place(view(it, t), s.ledger.OpenBins())
	lobs, _ := s.algo.(levelObserver)
	if b == nil {
		b = s.ledger.OpenNew(it, t)
		if obs, ok := s.algo.(binOpenObserver); ok {
			obs.BinOpened(b)
		}
		if lobs != nil {
			lobs.ItemPlaced(b)
		}
		return b.Index, true, nil
	}
	if !b.IsOpen() || !b.Fits(it) {
		return ErrServer, false, failf(ErrPolicyMisplace, "packing: policy %s returned unusable bin %d for job %d", s.algo.Name(), b.Index, id)
	}
	s.ledger.PlaceIn(b, it, t)
	if lobs != nil {
		lobs.ItemPlaced(b)
	}
	return b.Index, false, nil
}

// Depart reports that the job left at time t. It returns the server index
// it was on and whether that server shut down (closed) as a result. On
// error the server index is ErrServer (-1), never a valid index.
func (s *Stream) Depart(id item.ID, t float64) (server int, closed bool, err error) {
	if err := s.advance(t); err != nil {
		return ErrServer, false, err
	}
	if s.ledger.Locate(id) == nil {
		return ErrServer, false, failf(ErrUnknownJob, "packing: job %d is not running", id)
	}
	b, closed := s.ledger.Remove(id, t)
	if lobs, ok := s.algo.(levelObserver); ok {
		lobs.ItemRemoved(b)
	}
	return b.Index, closed, nil
}

func (s *Stream) advance(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return failf(ErrTimeRegression, "packing: non-finite time %g", t)
	}
	if s.nEvent > 0 && t < s.now {
		return failf(ErrTimeRegression, "packing: time went backwards (%g after %g)", t, s.now)
	}
	s.now = t
	s.nEvent++
	s.ledger.CloseExpired(t)
	return nil
}

// Now returns the time of the last event fed to the stream.
func (s *Stream) Now() float64 { return s.now }

// OpenServers returns the number of currently running servers.
func (s *Stream) OpenServers() int { return s.ledger.NumOpen() }

// ServersUsed returns the total number of servers ever opened.
func (s *Stream) ServersUsed() int { return s.ledger.NumOpened() }

// PeakServers returns the maximum number of simultaneously open servers.
func (s *Stream) PeakServers() int { return s.ledger.MaxConcurrentOpen() }

// AccumulatedUsage returns the total server usage time up to time now
// (open servers accrue usage up to now). This is the quantity the cloud
// tenant pays for under idealized (continuous) pay-as-you-go billing.
func (s *Stream) AccumulatedUsage(now float64) float64 { return s.ledger.TotalUsage(now) }

// Ledger exposes the underlying bin ledger for inspection (read-only use).
func (s *Stream) Ledger() *bins.Ledger { return s.ledger }

// Shutdown closes every lingering server at its natural expiry (used
// when a keep-alive stream drains). Servers still holding jobs are
// untouched; it returns the number of servers still running.
func (s *Stream) Shutdown() int {
	s.ledger.CloseAllLingering()
	return s.ledger.NumOpen()
}

package packing

import (
	"math"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// Stream is the online dispatching interface matching the paper's cloud
// scenario: jobs arrive one at a time with unknown departure times, the
// caller is told which server (bin) each job was assigned to, and later
// reports departures. It is what a cloud-gaming provider's dispatcher
// would embed; Run is a convenience wrapper over the same engine for
// instances whose departures are known to the simulator — both drive the
// identical placement core (validation, policy query, misplace check).
//
// Time must be fed in non-decreasing order across Arrive and Depart calls.
type Stream struct {
	eng    *engine
	now    float64
	nEvent int
}

// ErrServer is the server index Arrive and Depart return alongside a
// non-nil error. Real server indices start at 0, so a caller that stores
// the index before checking the error can never mistake a failed call for
// an assignment to the first server.
const ErrServer = -1

// NewStream creates a dispatcher using the given policy. The policy is
// Reset. dim is the resource dimensionality (1 for the scalar problem);
// capacity 0 means unit capacity.
func NewStream(algo Algorithm, capacity float64, dim int) *Stream {
	return NewStreamKeepAlive(algo, capacity, dim, 0)
}

// NewStreamKeepAlive is NewStream with lingering servers: an emptied
// server stays open (reusable) for keepAlive time units before shutting
// down, mirroring Options.KeepAlive for batch runs. Expiries are
// processed as the stream's clock advances.
func NewStreamKeepAlive(algo Algorithm, capacity float64, dim int, keepAlive float64) *Stream {
	s, err := NewStreamEngine(algo, capacity, dim, keepAlive, EngineIndexed)
	if err != nil {
		panic(err) // unreachable: EngineIndexed is always valid
	}
	return s
}

// NewStreamEngine is NewStreamKeepAlive with an explicit engine kind —
// EngineIndexed (the default everywhere) or EngineLinear (the reference
// backend the equivalence suite compares against).
func NewStreamEngine(algo Algorithm, capacity float64, dim int, keepAlive float64, kind EngineKind) (*Stream, error) {
	if !kind.valid() {
		return nil, badEngine(kind)
	}
	return &Stream{eng: newEngine(algo, capacity, dim, keepAlive, kind, false)}, nil
}

// Arrive dispatches a job with the given demand at time t and returns the
// index of the server it was assigned to, plus whether a new server was
// opened for it. sizes carries the vector demand for multi-dimensional
// streams and must be nil for 1-D streams.
//
// On error the returned server index is ErrServer (-1), which no real
// server ever carries — server 0 is a legitimate assignment, so callers
// that record indices before checking err cannot confuse the two.
func (s *Stream) Arrive(id item.ID, size float64, sizes []float64, t float64) (server int, opened bool, err error) {
	if err := s.advance(t); err != nil {
		return ErrServer, false, err
	}
	if s.eng.ledger.Locate(id) != nil {
		return ErrServer, false, failf(ErrDuplicateJob, "packing: job %d already running", id)
	}
	it := item.Item{ID: id, Size: size, Sizes: sizes, Arrival: t, Departure: math.Inf(1)}
	b, opened, err := s.eng.arrive(it, t, nil)
	if err != nil {
		return ErrServer, false, err
	}
	return b.Index, opened, nil
}

// Depart reports that the job left at time t. It returns the server index
// it was on and whether that server shut down (closed) as a result. On
// error the server index is ErrServer (-1), never a valid index.
func (s *Stream) Depart(id item.ID, t float64) (server int, closed bool, err error) {
	if err := s.advance(t); err != nil {
		return ErrServer, false, err
	}
	if s.eng.ledger.Locate(id) == nil {
		return ErrServer, false, failf(ErrUnknownJob, "packing: job %d is not running", id)
	}
	b, closed := s.eng.depart(id, t)
	return b.Index, closed, nil
}

func (s *Stream) advance(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return failf(ErrTimeRegression, "packing: non-finite time %g", t)
	}
	if s.nEvent > 0 && t < s.now {
		return failf(ErrTimeRegression, "packing: time went backwards (%g after %g)", t, s.now)
	}
	s.now = t
	s.nEvent++
	s.eng.ledger.CloseExpired(t)
	return nil
}

// Advance feeds a bare clock tick: the event counter increments, the
// clock moves to t, and due keep-alive expiries are processed — exactly
// the advance an Arrive/Depart performs before its own checks. Durable
// recovery (internal/wal) replays ticks for journaled events that
// advanced the clock but were then rejected (duplicate job, unknown job,
// bad demand), keeping replayed event counts and expiry processing
// bit-identical to the original run.
func (s *Stream) Advance(t float64) error { return s.advance(t) }

// Now returns the time of the last event fed to the stream.
func (s *Stream) Now() float64 { return s.now }

// OpenServers returns the number of currently running servers.
func (s *Stream) OpenServers() int { return s.eng.ledger.NumOpen() }

// ServersUsed returns the total number of servers ever opened.
func (s *Stream) ServersUsed() int { return s.eng.ledger.NumOpened() }

// PeakServers returns the maximum number of simultaneously open servers.
func (s *Stream) PeakServers() int { return s.eng.ledger.MaxConcurrentOpen() }

// AccumulatedUsage returns the total server usage time up to time now
// (open servers accrue usage up to now). This is the quantity the cloud
// tenant pays for under idealized (continuous) pay-as-you-go billing.
func (s *Stream) AccumulatedUsage(now float64) float64 { return s.eng.ledger.TotalUsage(now) }

// Ledger exposes the underlying bin ledger for inspection (read-only use).
func (s *Stream) Ledger() *bins.Ledger { return s.eng.ledger }

// Policy returns the name of the placement policy driving the stream.
func (s *Stream) Policy() string { return s.eng.algo.Name() }

// Engine returns the engine kind ("indexed" or "linear") the stream's
// placements run on — surfaced per shard by the allocation service's
// stats endpoint.
func (s *Stream) Engine() string { return string(s.eng.kind) }

// Shutdown closes every lingering server at its natural expiry (used
// when a keep-alive stream drains). Servers still holding jobs are
// untouched; it returns the number of servers still running.
func (s *Stream) Shutdown() int {
	s.eng.ledger.CloseAllLingering()
	return s.eng.ledger.NumOpen()
}

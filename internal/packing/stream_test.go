package packing

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/event"
)

func TestStreamBasicFlow(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 0)
	srv, opened, err := s.Arrive(1, 0.5, nil, 0)
	if err != nil || !opened || srv != 0 {
		t.Fatalf("arrive 1: srv=%d opened=%v err=%v", srv, opened, err)
	}
	srv, opened, err = s.Arrive(2, 0.5, nil, 1)
	if err != nil || opened || srv != 0 {
		t.Fatalf("arrive 2 must join server 0: srv=%d opened=%v err=%v", srv, opened, err)
	}
	if s.OpenServers() != 1 || s.PeakServers() != 1 {
		t.Fatalf("open=%d peak=%d", s.OpenServers(), s.PeakServers())
	}
	srv, closed, err := s.Depart(1, 3)
	if err != nil || closed || srv != 0 {
		t.Fatalf("depart 1: srv=%d closed=%v err=%v", srv, closed, err)
	}
	srv, closed, err = s.Depart(2, 5)
	if err != nil || !closed || srv != 0 {
		t.Fatalf("depart 2 must close server 0: %v", err)
	}
	if got := s.AccumulatedUsage(5); got != 5 {
		t.Fatalf("usage = %g, want 5", got)
	}
	if s.ServersUsed() != 1 {
		t.Fatalf("servers used = %d", s.ServersUsed())
	}
}

func TestStreamErrors(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 0)
	if _, _, err := s.Arrive(1, 0.5, nil, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Arrive(1, 0.5, nil, 11); err == nil {
		t.Fatal("duplicate running job must error")
	}
	if _, _, err := s.Arrive(2, 0.5, nil, 5); err == nil {
		t.Fatal("time going backwards must error")
	}
	if _, _, err := s.Depart(99, 12); err == nil {
		t.Fatal("departing unknown job must error")
	}
	if _, _, err := s.Arrive(3, 1.5, nil, 12); err == nil {
		t.Fatal("oversize job must error")
	}
	if _, _, err := s.Arrive(4, 0, nil, 12); err == nil {
		t.Fatal("zero-size job must error")
	}
	if _, _, err := s.Arrive(5, 0.5, []float64{0.5, 0.2}, 12); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestStreamUsageAccrualWhileOpen(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 0)
	s.Arrive(1, 0.4, nil, 0)
	s.Arrive(2, 0.4, nil, 2) // same server
	s.Arrive(3, 0.4, nil, 2) // new server (0.4*3 > 1)
	if got := s.AccumulatedUsage(10); got != 10+8 {
		t.Fatalf("usage at 10 = %g, want 18", got)
	}
	if s.OpenServers() != 2 {
		t.Fatalf("open = %d", s.OpenServers())
	}
	if s.Now() != 2 {
		t.Fatalf("now = %g", s.Now())
	}
}

func TestStreamMatchesRunOnSameSequence(t *testing.T) {
	// Feeding Run's event order through Stream must give identical usage.
	l := handInstance()
	run := MustRun(NewFirstFit(), l, nil)

	s := NewStream(NewFirstFit(), 0, 0)
	// Events in time order: arrivals at 0:A; 1:B,C; departures 2:A, 3:B, 4:C.
	s.Arrive(1, 0.5, nil, 0)
	s.Arrive(2, 0.6, nil, 1)
	s.Arrive(3, 0.4, nil, 1)
	s.Depart(1, 2)
	s.Depart(2, 3)
	s.Depart(3, 4)
	if got := s.AccumulatedUsage(4); got != run.TotalUsage {
		t.Fatalf("stream usage %g != run usage %g", got, run.TotalUsage)
	}
	if s.PeakServers() != run.MaxConcurrentOpen {
		t.Fatal("peak mismatch")
	}
}

func TestStreamWithNextFitObserver(t *testing.T) {
	s := NewStream(NewNextFit(), 0, 0)
	s.Arrive(1, 0.5, nil, 0) // server 0, available
	s.Arrive(2, 0.7, nil, 1) // server 1, available; 0 now unavailable
	srv, _, _ := s.Arrive(3, 0.2, nil, 2)
	if srv != 1 {
		t.Fatalf("NF stream must use available server 1, got %d", srv)
	}
}

func TestStreamKeepAlive(t *testing.T) {
	s := NewStreamKeepAlive(NewFirstFit(), 0, 0, 5)
	s.Arrive(1, 1.0, nil, 0)
	if _, closed, _ := s.Depart(1, 2); closed {
		t.Fatal("keep-alive server must linger, not close")
	}
	if s.OpenServers() != 1 {
		t.Fatal("lingering server must count as open")
	}
	// Reuse within the window.
	srv, opened, err := s.Arrive(2, 1.0, nil, 4)
	if err != nil || opened || srv != 0 {
		t.Fatalf("reuse failed: srv=%d opened=%v err=%v", srv, opened, err)
	}
	s.Depart(2, 6)
	// Let it expire: advancing past 11 closes it.
	if _, _, err := s.Arrive(3, 1.0, nil, 12); err != nil {
		t.Fatal(err)
	}
	if s.ServersUsed() != 2 {
		t.Fatalf("servers used = %d, want 2", s.ServersUsed())
	}
	s.Depart(3, 13)
	if left := s.Shutdown(); left != 0 {
		t.Fatalf("%d servers still running after shutdown", left)
	}
	// Usage: server 0 [0, 11), server 1 [12, 18).
	if got := s.AccumulatedUsage(99); got != 11+6 {
		t.Fatalf("usage = %g, want 17", got)
	}
}

// Stream and Run must agree exactly when fed the same event sequence in
// the simulator's order, for every policy (including the segment-tree
// engine, which relies on the observer hooks in both paths).
func TestStreamEquivalentToRunAcrossPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		l := randomInstance(rng, 120, 8)
		algos := Standard()
		algos["fastff"] = NewFastFirstFit()
		for name, algo := range algos {
			run := MustRun(algo, l, nil)
			s := NewStream(algo, 0, 0)
			q := event.NewFromList(l)
			for q.Len() > 0 {
				e := q.Pop()
				if e.Kind == event.Arrive {
					if _, _, err := s.Arrive(e.Item.ID, e.Item.Size, nil, e.Time); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				} else {
					if _, _, err := s.Depart(e.Item.ID, e.Time); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
			}
			end := l.PackingPeriod().Hi
			if got := s.AccumulatedUsage(end); math.Abs(got-run.TotalUsage) > 1e-9 {
				t.Fatalf("%s: stream usage %g != run usage %g", name, got, run.TotalUsage)
			}
			if s.ServersUsed() != run.NumBins() || s.PeakServers() != run.MaxConcurrentOpen {
				t.Fatalf("%s: structure mismatch", name)
			}
		}
	}
}

package packing

import (
	"math"
	"math/rand"
	"testing"

	"dbp/internal/event"
	"dbp/internal/item"
)

func TestStreamBasicFlow(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 0)
	srv, opened, err := s.Arrive(1, 0.5, nil, 0)
	if err != nil || !opened || srv != 0 {
		t.Fatalf("arrive 1: srv=%d opened=%v err=%v", srv, opened, err)
	}
	srv, opened, err = s.Arrive(2, 0.5, nil, 1)
	if err != nil || opened || srv != 0 {
		t.Fatalf("arrive 2 must join server 0: srv=%d opened=%v err=%v", srv, opened, err)
	}
	if s.OpenServers() != 1 || s.PeakServers() != 1 {
		t.Fatalf("open=%d peak=%d", s.OpenServers(), s.PeakServers())
	}
	srv, closed, err := s.Depart(1, 3)
	if err != nil || closed || srv != 0 {
		t.Fatalf("depart 1: srv=%d closed=%v err=%v", srv, closed, err)
	}
	srv, closed, err = s.Depart(2, 5)
	if err != nil || !closed || srv != 0 {
		t.Fatalf("depart 2 must close server 0: %v", err)
	}
	if got := s.AccumulatedUsage(5); got != 5 {
		t.Fatalf("usage = %g, want 5", got)
	}
	if s.ServersUsed() != 1 {
		t.Fatalf("servers used = %d", s.ServersUsed())
	}
}

func TestStreamErrors(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 0)
	if _, _, err := s.Arrive(1, 0.5, nil, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Arrive(1, 0.5, nil, 11); err == nil {
		t.Fatal("duplicate running job must error")
	}
	if _, _, err := s.Arrive(2, 0.5, nil, 5); err == nil {
		t.Fatal("time going backwards must error")
	}
	if _, _, err := s.Depart(99, 12); err == nil {
		t.Fatal("departing unknown job must error")
	}
	if _, _, err := s.Arrive(3, 1.5, nil, 12); err == nil {
		t.Fatal("oversize job must error")
	}
	if _, _, err := s.Arrive(4, 0, nil, 12); err == nil {
		t.Fatal("zero-size job must error")
	}
	if _, _, err := s.Arrive(5, 0.5, []float64{0.5, 0.2}, 12); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

// Every error path of Arrive and Depart must return the ErrServer (-1)
// sentinel, never a value collidable with the legitimate server index 0.
func TestStreamErrorSentinel(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 0)
	if _, _, err := s.Arrive(1, 0.5, nil, 10); err != nil {
		t.Fatal(err)
	}
	arrives := []struct {
		name  string
		id    item.ID
		size  float64
		sizes []float64
		t     float64
	}{
		{"duplicate job", 1, 0.5, nil, 11},
		{"time backwards", 2, 0.5, nil, 5},
		{"oversize", 3, 1.5, nil, 12},
		{"zero size", 4, 0, nil, 12},
		{"NaN size", 5, math.NaN(), nil, 12},
		{"dim mismatch", 6, 0.5, []float64{0.5, 0.2}, 12},
	}
	for _, c := range arrives {
		srv, opened, err := s.Arrive(c.id, c.size, c.sizes, c.t)
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if srv != ErrServer || opened {
			t.Fatalf("%s: srv=%d opened=%v with error, want ErrServer and false", c.name, srv, opened)
		}
	}
	for _, tm := range []float64{12, 5} { // unknown job; then time backwards
		srv, closed, err := s.Depart(99, tm)
		if err == nil {
			t.Fatal("Depart: expected error")
		}
		if srv != ErrServer || closed {
			t.Fatalf("Depart: srv=%d closed=%v with error, want ErrServer and false", srv, closed)
		}
	}
}

// Regression: a vector job with one component over capacity used to pass
// the scalar size check and panic inside Bin.Place; it must now be
// rejected like an oversized scalar job.
func TestStreamVectorOversizeRejected(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 2)
	if _, _, err := s.Arrive(1, 0.5, []float64{0.5, 0.2}, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		sizes []float64
	}{
		{"component over capacity", []float64{0.5, 1.5}},
		{"negative component", []float64{0.5, -0.1}},
		{"NaN component", []float64{0.5, math.NaN()}},
	}
	for _, c := range cases {
		srv, opened, err := s.Arrive(2, 0.5, c.sizes, 1)
		if err == nil {
			t.Fatalf("%s: expected error, got server %d", c.name, srv)
		}
		if srv != ErrServer || opened {
			t.Fatalf("%s: srv=%d opened=%v with error", c.name, srv, opened)
		}
	}
	// The stream must remain usable after rejected arrivals.
	if _, _, err := s.Arrive(3, 0.4, []float64{0.4, 0.4}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestStreamUsageAccrualWhileOpen(t *testing.T) {
	s := NewStream(NewFirstFit(), 0, 0)
	s.Arrive(1, 0.4, nil, 0)
	s.Arrive(2, 0.4, nil, 2) // same server
	s.Arrive(3, 0.4, nil, 2) // new server (0.4*3 > 1)
	if got := s.AccumulatedUsage(10); got != 10+8 {
		t.Fatalf("usage at 10 = %g, want 18", got)
	}
	if s.OpenServers() != 2 {
		t.Fatalf("open = %d", s.OpenServers())
	}
	if s.Now() != 2 {
		t.Fatalf("now = %g", s.Now())
	}
}

func TestStreamMatchesRunOnSameSequence(t *testing.T) {
	// Feeding Run's event order through Stream must give identical usage.
	l := handInstance()
	run := MustRun(NewFirstFit(), l, nil)

	s := NewStream(NewFirstFit(), 0, 0)
	// Events in time order: arrivals at 0:A; 1:B,C; departures 2:A, 3:B, 4:C.
	s.Arrive(1, 0.5, nil, 0)
	s.Arrive(2, 0.6, nil, 1)
	s.Arrive(3, 0.4, nil, 1)
	s.Depart(1, 2)
	s.Depart(2, 3)
	s.Depart(3, 4)
	if got := s.AccumulatedUsage(4); got != run.TotalUsage {
		t.Fatalf("stream usage %g != run usage %g", got, run.TotalUsage)
	}
	if s.PeakServers() != run.MaxConcurrentOpen {
		t.Fatal("peak mismatch")
	}
}

func TestStreamWithNextFitObserver(t *testing.T) {
	s := NewStream(NewNextFit(), 0, 0)
	s.Arrive(1, 0.5, nil, 0) // server 0, available
	s.Arrive(2, 0.7, nil, 1) // server 1, available; 0 now unavailable
	srv, _, _ := s.Arrive(3, 0.2, nil, 2)
	if srv != 1 {
		t.Fatalf("NF stream must use available server 1, got %d", srv)
	}
}

func TestStreamKeepAlive(t *testing.T) {
	s := NewStreamKeepAlive(NewFirstFit(), 0, 0, 5)
	s.Arrive(1, 1.0, nil, 0)
	if _, closed, _ := s.Depart(1, 2); closed {
		t.Fatal("keep-alive server must linger, not close")
	}
	if s.OpenServers() != 1 {
		t.Fatal("lingering server must count as open")
	}
	// Reuse within the window.
	srv, opened, err := s.Arrive(2, 1.0, nil, 4)
	if err != nil || opened || srv != 0 {
		t.Fatalf("reuse failed: srv=%d opened=%v err=%v", srv, opened, err)
	}
	s.Depart(2, 6)
	// Let it expire: advancing past 11 closes it.
	if _, _, err := s.Arrive(3, 1.0, nil, 12); err != nil {
		t.Fatal(err)
	}
	if s.ServersUsed() != 2 {
		t.Fatalf("servers used = %d, want 2", s.ServersUsed())
	}
	s.Depart(3, 13)
	if left := s.Shutdown(); left != 0 {
		t.Fatalf("%d servers still running after shutdown", left)
	}
	// Usage: server 0 [0, 11), server 1 [12, 18).
	if got := s.AccumulatedUsage(99); got != 11+6 {
		t.Fatalf("usage = %g, want 17", got)
	}
}

// A server whose keep-alive expires exactly at an arrival's timestamp is
// already shut down (half-open expiry) and must not serve that arrival.
func TestStreamKeepAliveExpiryAtArrival(t *testing.T) {
	s := NewStreamKeepAlive(NewFirstFit(), 0, 0, 2)
	s.Arrive(1, 0.5, nil, 0)
	s.Depart(1, 1) // server 0 lingers, expires at 3
	srv, opened, err := s.Arrive(2, 0.5, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !opened || srv != 1 {
		t.Fatalf("arrival at the expiry instant reused server %d (opened=%v), want fresh server 1", srv, opened)
	}
	if b := s.Ledger().AllBins()[0]; b.IsOpen() || b.ClosedAt() != 3 {
		t.Fatalf("server 0 must be closed at 3, got %v", b)
	}
}

// Property: the linear reference engine and the indexed engine must
// produce identical per-job assignments, event by event, on randomized
// keep-alive streams — the oracle guarding the O(log B) ledger paths
// (expiry heap + binary-search removal) and the BinIndex under
// lingering servers.
func TestIndexedLinearKeepAliveStreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	keepAlives := []float64{0, 0.3, 1.5, 8}
	for trial := 0; trial < 8; trial++ {
		keepAlive := keepAlives[trial%len(keepAlives)]
		l := randomInstance(rng, 150, 6)
		naive, err := NewStreamEngine(NewFirstFit(), 0, 0, keepAlive, EngineLinear)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewStreamEngine(NewFirstFit(), 0, 0, keepAlive, EngineIndexed)
		if err != nil {
			t.Fatal(err)
		}
		q := event.NewFromList(l)
		for q.Len() > 0 {
			e := q.Pop()
			if e.Kind == event.Arrive {
				s1, o1, err1 := naive.Arrive(e.Item.ID, e.Item.Size, nil, e.Time)
				s2, o2, err2 := fast.Arrive(e.Item.ID, e.Item.Size, nil, e.Time)
				if err1 != nil || err2 != nil {
					t.Fatalf("trial %d: arrive errors %v / %v", trial, err1, err2)
				}
				if s1 != s2 || o1 != o2 {
					t.Fatalf("trial %d ka=%g: job %d -> server %d (naive) vs %d (fast), opened %v/%v",
						trial, keepAlive, e.Item.ID, s1, s2, o1, o2)
				}
			} else {
				s1, c1, err1 := naive.Depart(e.Item.ID, e.Time)
				s2, c2, err2 := fast.Depart(e.Item.ID, e.Time)
				if err1 != nil || err2 != nil {
					t.Fatalf("trial %d: depart errors %v / %v", trial, err1, err2)
				}
				if s1 != s2 || c1 != c2 {
					t.Fatalf("trial %d ka=%g: job %d departed server %d/%d closed %v/%v",
						trial, keepAlive, e.Item.ID, s1, s2, c1, c2)
				}
			}
			if err := naive.Ledger().CheckInvariants(); err != nil {
				t.Fatalf("trial %d naive: %v", trial, err)
			}
			if err := fast.Ledger().CheckInvariants(); err != nil {
				t.Fatalf("trial %d fast: %v", trial, err)
			}
		}
		naive.Shutdown()
		fast.Shutdown()
		end := l.PackingPeriod().Hi + keepAlive
		if u1, u2 := naive.AccumulatedUsage(end), fast.AccumulatedUsage(end); u1 != u2 {
			t.Fatalf("trial %d ka=%g: usage %g (naive) != %g (fast)", trial, keepAlive, u1, u2)
		}
		if naive.ServersUsed() != fast.ServersUsed() || naive.PeakServers() != fast.PeakServers() {
			t.Fatalf("trial %d ka=%g: fleet shape mismatch", trial, keepAlive)
		}
	}
}

// Stream and Run must agree exactly when fed the same event sequence in
// the simulator's order, for every policy — both paths now run the same
// unified engine, so any drift here means the shared core is broken.
func TestStreamEquivalentToRunAcrossPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		l := randomInstance(rng, 120, 8)
		algos := Standard()
		for name, algo := range algos {
			run := MustRun(algo, l, nil)
			s := NewStream(algo, 0, 0)
			q := event.NewFromList(l)
			for q.Len() > 0 {
				e := q.Pop()
				if e.Kind == event.Arrive {
					if _, _, err := s.Arrive(e.Item.ID, e.Item.Size, nil, e.Time); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				} else {
					if _, _, err := s.Depart(e.Item.ID, e.Time); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
			}
			end := l.PackingPeriod().Hi
			if got := s.AccumulatedUsage(end); math.Abs(got-run.TotalUsage) > 1e-9 {
				t.Fatalf("%s: stream usage %g != run usage %g", name, got, run.TotalUsage)
			}
			if s.ServersUsed() != run.NumBins() || s.PeakServers() != run.MaxConcurrentOpen {
				t.Fatalf("%s: structure mismatch", name)
			}
		}
	}
}

package packing

import "dbp/internal/bins"

// BestFit places each item into the fitting open bin with the least
// remaining capacity (smallest gap), breaking ties toward the earliest
// opened bin. The paper notes (Sec. I) that for MinUsageTime DBP the
// competitive ratio of Best Fit is NOT bounded for any given mu — in sharp
// contrast to classical bin packing, where Best Fit is one of the good
// heuristics. Experiment E4 reproduces the unboundedness.
type BestFit struct{}

// NewBestFit returns a Best Fit policy.
func NewBestFit() *BestFit { return &BestFit{} }

// Name implements Algorithm.
func (*BestFit) Name() string { return "BestFit" }

// Place returns the fitting bin with minimal gap (ties: lowest index).
func (*BestFit) Place(a Arrival, f Fleet) *bins.Bin {
	if len(a.Sizes) > 0 {
		// Vector demand: enumerate the fitting bins (pruned descent on
		// the indexed engine) keeping the historical scalar scoring —
		// smallest first-dimension gap, ties toward the earliest opened.
		var best *bins.Bin
		f.EachFitting(a.Sizes, func(b *bins.Bin) bool {
			if best == nil || b.Gap() < best.Gap() {
				best = b
			}
			return true
		})
		return best
	}
	return f.TightestFitting(a.need())
}

// BinOpened implements Algorithm; Best Fit tracks no bin state.
func (*BestFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; Best Fit is stateless.
func (*BestFit) Reset() {}

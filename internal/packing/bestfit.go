package packing

import "dbp/internal/bins"

// BestFit places each item into the fitting open bin with the least
// remaining capacity (highest level), breaking ties toward the earliest
// opened bin. The paper notes (Sec. I) that for MinUsageTime DBP the
// competitive ratio of Best Fit is NOT bounded for any given mu — in sharp
// contrast to classical bin packing, where Best Fit is one of the good
// heuristics. Experiment E4 reproduces the unboundedness.
type BestFit struct{}

// NewBestFit returns a Best Fit policy.
func NewBestFit() *BestFit { return &BestFit{} }

// Name implements Algorithm.
func (*BestFit) Name() string { return "BestFit" }

// Place returns the fitting bin with minimal gap (ties: lowest index).
func (*BestFit) Place(a Arrival, open []*bins.Bin) *bins.Bin {
	var best *bins.Bin
	bestGap := 0.0
	for _, b := range open {
		if !fits(b, a) {
			continue
		}
		if best == nil || b.Gap() < bestGap-bins.Eps {
			best, bestGap = b, b.Gap()
		}
	}
	return best
}

// Reset implements Algorithm; Best Fit is stateless.
func (*BestFit) Reset() {}

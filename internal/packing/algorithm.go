// Package packing implements online algorithms for the MinUsageTime
// Dynamic Bin Packing problem and the event-driven simulator that runs
// them over an item list (Tang, Li, Ren, Cai: "On First Fit Bin Packing
// for Online Cloud Server Allocation", IPDPS 2016).
//
// The online model: when an item arrives, the algorithm sees only the
// item's size and the current state of the open bins — never the item's
// departure time (unknown at arrival) and never future arrivals. The
// Algorithm interface enforces the first restriction structurally by
// passing an Arrival view that carries no times. Placements are
// irrevocable: items are never migrated between bins.
package packing

import (
	"math"

	"dbp/internal/bins"
	"dbp/internal/item"
)

// Arrival is the online-visible view of an arriving item: its identity and
// resource demand, but not its departure time. Departure is NaN in the
// online model; it is populated only when the simulator runs with
// Options.Clairvoyant, which is NOT the paper's setting — clairvoyant
// policies exist as baselines quantifying the value of knowing departures
// (the paper contrasts with interval scheduling, where ending times are
// known; Sec. II).
type Arrival struct {
	ID    item.ID
	Size  float64
	Sizes []float64 // nil for 1-D items
	// At is the arrival time — the current wall clock, which every
	// online policy legitimately knows.
	At float64
	// Departure is NaN unless the run is clairvoyant.
	Departure float64
}

// view converts a full item to its online-visible arrival view at time t.
func view(it item.Item, t float64) Arrival {
	return Arrival{ID: it.ID, Size: it.Size, Sizes: it.Sizes, At: t, Departure: math.NaN()}
}

// sizeVec returns the demand vector of the arrival ({Size} for 1-D).
func (a Arrival) sizeVec() []float64 {
	if len(a.Sizes) == 0 {
		return []float64{a.Size}
	}
	return a.Sizes
}

// need is the gap threshold the arrival's scalar demand requires of a
// bin: size minus the capacity tolerance, so a bin with gap >= need
// accommodates the item under the same epsilon as Bin.Fits.
func (a Arrival) need() float64 { return a.Size - bins.Eps }

// Fleet is a policy's read-only view of the open bins: the raw opening-
// order slice plus the Any Fit queries every classical policy is built
// from. The indexed engine answers each query in O(log B) from the
// ledger-maintained bins.Index; the linear reference engine answers them
// with O(B) scans of identical, exact (gap, index)-lexicographic
// semantics — the cross-engine equivalence suite holds the two to
// bit-identical packings.
//
// The scalar queries take a pre-folded gap threshold (need = size - Eps)
// and are exact for 1-D demands. The vector queries take the RAW demand
// vector — tolerance is applied internally via the per-dimension
// bins.Bin.FitsDemand admission test, the same comparison on both
// backends — and serve d-dimensional (DVBP) placements: positional
// enumeration for First/Last Fit rules and score-minimizing policies,
// and the dominant-resource (max-min-gap) selection for Worst Fit
// rules. On the indexed backend they are answered by pruned descent of
// the per-dimension max-gap tree and the (MinGap, index) treap
// (bins.Index); the linear backend scans.
type Fleet interface {
	// Open returns the currently open bins in opening order (ascending
	// index). The slice is shared; callers must not modify or retain it.
	Open() []*bins.Bin
	// FirstFitting returns the earliest-opened bin with gap >= need.
	FirstFitting(need float64) *bins.Bin
	// LastFitting returns the latest-opened bin with gap >= need.
	LastFitting(need float64) *bins.Bin
	// TightestFitting returns the bin with the smallest gap >= need,
	// ties toward the earliest opened.
	TightestFitting(need float64) *bins.Bin
	// EmptiestFitting returns the bin with the largest gap, ties toward
	// the earliest opened, or nil if that gap is below need.
	EmptiestFitting(need float64) *bins.Bin
	// SecondEmptiestFitting returns the runner-up of EmptiestFitting
	// under the (descending gap, ascending index) order, restricted to
	// gaps >= need.
	SecondEmptiestFitting(need float64) *bins.Bin
	// FirstFittingVec returns the earliest-opened bin that fits the
	// demand vector in every dimension, or nil.
	FirstFittingVec(sizes []float64) *bins.Bin
	// LastFittingVec returns the latest-opened such bin, or nil.
	LastFittingVec(sizes []float64) *bins.Bin
	// EachFitting visits every open bin fitting the demand vector in
	// ascending opening order, stopping when visit returns false.
	EachFitting(sizes []float64, visit func(*bins.Bin) bool)
	// MaxMinGapFitting returns the fitting bin whose dominant (most
	// loaded) resource has the most remaining capacity — the bin
	// maximizing min over dimensions of gap — ties toward the earliest
	// opened, or nil.
	MaxMinGapFitting(sizes []float64) *bins.Bin
}

// Algorithm is an online bin packing policy.
//
// Place returns the open bin that should receive the arrival — located
// through the Fleet's indexed queries or its Open() slice — or nil to
// open a new bin. Returning a bin that cannot accommodate the arrival is
// a policy bug and makes the engine fail the run (ErrPolicyMisplace).
// Implementations may retain references to individual bins across calls
// (e.g. Next Fit's available bin) and must tolerate those bins having
// closed.
//
// BinOpened reports the bin the engine opened after Place returned nil,
// so bounded-state policies can track it (Next Fit's available bin,
// Hybrid's class tag). Stateless policies implement it as a no-op.
//
// Reset restores the algorithm's initial state so one value can be reused
// across runs.
type Algorithm interface {
	Name() string
	Place(a Arrival, f Fleet) *bins.Bin
	BinOpened(b *bins.Bin)
	Reset()
}

// fits reports whether the arrival fits in the bin under the bin's
// capacity with tolerance, in every dimension.
func fits(b *bins.Bin, a Arrival) bool {
	return b.FitsDemand(a.sizeVec())
}

// fitting filters the open bins down to those that can accommodate the
// arrival, preserving opening order.
func fitting(open []*bins.Bin, a Arrival) []*bins.Bin {
	var out []*bins.Bin
	for _, b := range open {
		if fits(b, a) {
			out = append(out, b)
		}
	}
	return out
}

package packing

import "dbp/internal/bins"

// FirstFit is the First Fit packing algorithm analyzed by the paper
// (Sec. III-B): each arriving item is placed in the open bin that was
// opened earliest (lowest index) among those that can accommodate it; if
// none can, a new bin is opened.
//
// Theorem 1 of the paper: First Fit is (mu+4)-competitive for MinUsageTime
// DBP, where mu is the max/min item duration ratio — the best known upper
// bound, within an additive constant of the lower bound mu that holds for
// every online algorithm.
type FirstFit struct{}

// NewFirstFit returns a First Fit policy.
func NewFirstFit() *FirstFit { return &FirstFit{} }

// Name implements Algorithm.
func (*FirstFit) Name() string { return "FirstFit" }

// Place returns the lowest-indexed open bin that fits, or nil.
func (*FirstFit) Place(a Arrival, f Fleet) *bins.Bin {
	if len(a.Sizes) > 0 {
		return f.FirstFittingVec(a.Sizes)
	}
	return f.FirstFitting(a.need())
}

// BinOpened implements Algorithm; First Fit tracks no bin state.
func (*FirstFit) BinOpened(*bins.Bin) {}

// Reset implements Algorithm; First Fit is stateless.
func (*FirstFit) Reset() {}

package packing

import (
	"fmt"
	"sort"
	"strings"
)

// Standard returns a fresh instance of every standard policy studied in
// the experiments, keyed by a stable short name. The map is newly built on
// each call so callers can run the policies concurrently.
func Standard() map[string]Algorithm {
	return map[string]Algorithm{
		"firstfit":       NewFirstFit(),
		"bestfit":        NewBestFit(),
		"worstfit":       NewWorstFit(),
		"lastfit":        NewLastFit(),
		"nextfit":        NewNextFit(),
		"randomfit":      NewRandomFit(1),
		"hybridff":       NewHybridFirstFit(2),
		"hybridff3":      NewHybridFirstFit(3),
		"hybridnextfit":  NewHybridNextFit(2),
		"almostworstfit": NewAlmostWorstFit(),
		"next2fit":       NewNextKFit(2),
		"next4fit":       NewNextKFit(4),
	}
}

// Clairvoyant returns the departure-aware baselines; they must be run
// with Options.Clairvoyant and are not part of Standard (they are not
// online algorithms in the paper's model).
func Clairvoyant() map[string]Algorithm {
	return map[string]Algorithm{
		"alignfit":    NewAlignFit(),
		"noextendfit": NewNoExtendFit(),
	}
}

// Names returns the sorted short names of the standard policies.
func Names() []string {
	m := Standard()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh instance of the named standard policy
// (case-insensitive), or an error listing the valid names.
func ByName(name string) (Algorithm, error) {
	if a, ok := Standard()[strings.ToLower(name)]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("packing: unknown algorithm %q (valid: %s)", name, strings.Join(Names(), ", "))
}

package packing

import (
	"fmt"
	"sort"
	"strings"
)

// Standard returns a fresh instance of every standard policy studied in
// the experiments, keyed by a stable short name. The map is newly built on
// each call so callers can run the policies concurrently.
func Standard() map[string]Algorithm {
	return map[string]Algorithm{
		"firstfit":       NewFirstFit(),
		"bestfit":        NewBestFit(),
		"worstfit":       NewWorstFit(),
		"lastfit":        NewLastFit(),
		"nextfit":        NewNextFit(),
		"randomfit":      NewRandomFit(1),
		"hybridff":       NewHybridFirstFit(2),
		"hybridff3":      NewHybridFirstFit(3),
		"hybridnextfit":  NewHybridNextFit(2),
		"almostworstfit": NewAlmostWorstFit(),
		"next2fit":       NewNextKFit(2),
		"next4fit":       NewNextKFit(4),
	}
}

// Vector returns a fresh instance of every DVBP (vector bin packing)
// policy, keyed by a stable short name. They are kept out of Standard
// so the scalar experiment sweeps keep their historical policy set, but
// they are selectable everywhere ByName is (dbpserved -algo, dbpbench,
// dbpverify). All accept scalar workloads too, degenerating to their
// 1-D classical counterparts.
func Vector() map[string]Algorithm {
	return map[string]Algorithm{
		"vectorfirstfit": NewVectorFirstFit(),
		"vectorbestfit":  NewVectorBestFit(),
		"dotfit":         NewDotProductFit(),
		"normfit":        NewNormBestFit(),
		"drworstfit":     NewDRWorstFit(),
	}
}

// Clairvoyant returns the departure-aware baselines; they must be run
// with Options.Clairvoyant and are not part of Standard (they are not
// online algorithms in the paper's model).
func Clairvoyant() map[string]Algorithm {
	return map[string]Algorithm{
		"alignfit":    NewAlignFit(),
		"noextendfit": NewNoExtendFit(),
	}
}

// Names returns the sorted short names of the standard and vector
// policies.
func Names() []string {
	m := Standard()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for k := range Vector() {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh instance of the named standard or vector
// policy (case-insensitive), or an error listing the valid names.
func ByName(name string) (Algorithm, error) {
	if a, ok := Standard()[strings.ToLower(name)]; ok {
		return a, nil
	}
	if a, ok := Vector()[strings.ToLower(name)]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("packing: unknown algorithm %q (valid: %s)", name, strings.Join(Names(), ", "))
}

package packing

import (
	"fmt"
	"math/rand"

	"dbp/internal/bins"
)

// RandomFit places each item into a uniformly random fitting open bin. It
// is an Any Fit algorithm (it opens a new bin only when nothing fits) and
// serves as a randomized baseline in the comparison experiments. Runs are
// reproducible: the policy is seeded and Reset rewinds it to the seed.
// The candidate set is the full fitting list, so the policy stays on the
// linear path by construction.
type RandomFit struct {
	seed int64
	rng  *rand.Rand
}

// NewRandomFit returns a Random Fit policy with the given seed.
func NewRandomFit(seed int64) *RandomFit {
	return &RandomFit{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Algorithm.
func (rf *RandomFit) Name() string { return fmt.Sprintf("RandomFit(seed=%d)", rf.seed) }

// Place returns a uniformly random fitting bin, or nil if none fits.
func (rf *RandomFit) Place(a Arrival, f Fleet) *bins.Bin {
	cands := fitting(f.Open(), a)
	if len(cands) == 0 {
		return nil
	}
	return cands[rf.rng.Intn(len(cands))]
}

// BinOpened implements Algorithm; Random Fit tracks no bin state.
func (*RandomFit) BinOpened(*bins.Bin) {}

// Reset rewinds the random stream to the seed, making runs reproducible.
func (rf *RandomFit) Reset() { rf.rng = rand.New(rand.NewSource(rf.seed)) }

package packing

import (
	"fmt"

	"dbp/internal/bins"
)

// RandomFit places each item into a uniformly random fitting open bin. It
// is an Any Fit algorithm (it opens a new bin only when nothing fits) and
// serves as a randomized baseline in the comparison experiments. Runs are
// reproducible: the policy is seeded and Reset rewinds it to the seed.
// The candidate set is the full fitting list, so the policy stays on the
// linear path by construction.
//
// The random stream is counter-based (splitmix64 of seed + draw number),
// not math/rand: draw n is a pure function of (seed, n), so the policy's
// entire state is the seed and a draw counter — serializable for durable
// snapshots (SaveState), where math/rand's hidden generator state is not.
type RandomFit struct {
	seed  int64
	draws uint64
}

// NewRandomFit returns a Random Fit policy with the given seed.
func NewRandomFit(seed int64) *RandomFit {
	return &RandomFit{seed: seed}
}

// Name implements Algorithm.
func (rf *RandomFit) Name() string { return fmt.Sprintf("RandomFit(seed=%d)", rf.seed) }

// next consumes one draw: splitmix64's output function over the counter
// sequence seeded at seed (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA'14).
func (rf *RandomFit) next() uint64 {
	rf.draws++
	x := uint64(rf.seed) + rf.draws*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Place returns a uniformly random fitting bin, or nil if none fits.
// (Modulo bias over 64-bit draws is immeasurably small for any feasible
// fleet size.)
func (rf *RandomFit) Place(a Arrival, f Fleet) *bins.Bin {
	cands := fitting(f.Open(), a)
	if len(cands) == 0 {
		return nil
	}
	return cands[int(rf.next()%uint64(len(cands)))]
}

// BinOpened implements Algorithm; Random Fit tracks no bin state.
func (*RandomFit) BinOpened(*bins.Bin) {}

// Reset rewinds the random stream to the seed, making runs reproducible.
func (rf *RandomFit) Reset() { rf.draws = 0 }

// SaveState implements StatefulAlgorithm: the draw counter (the seed is
// construction configuration, carried by the policy name).
func (rf *RandomFit) SaveState() PolicyState { return PolicyState{Draws: rf.draws} }

// RestoreState implements StatefulAlgorithm.
func (rf *RandomFit) RestoreState(st PolicyState, _ func(int) *bins.Bin) error {
	rf.draws = st.Draws
	return nil
}

package packing

import (
	"math/rand"
	"testing"

	"dbp/internal/item"
)

func testFleet() []ServerType {
	return []ServerType{
		{Name: "small", Capacity: 0.25},
		{Name: "large", Capacity: 1.0},
		{Name: "medium", Capacity: 0.5},
	}
}

func TestRunFleetRightSize(t *testing.T) {
	l := item.List{
		mk(1, 0.2, 0, 10), // fits small
		mk(2, 0.4, 0, 10), // fits medium
		mk(3, 0.9, 0, 10), // needs large
	}
	res, err := RunFleet(NewFirstFit(), l, testFleet(), RightSize(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.NumBins() != 3 {
		t.Fatalf("bins = %d, want 3", res.NumBins())
	}
	caps := map[float64]int{}
	for _, b := range res.Bins {
		caps[b.Capacity]++
	}
	if caps[0.25] != 1 || caps[0.5] != 1 || caps[1.0] != 1 {
		t.Fatalf("tier usage = %v", caps)
	}
}

func TestRunFleetLargestConsolidates(t *testing.T) {
	l := item.List{
		mk(1, 0.2, 0, 10),
		mk(2, 0.2, 1, 10),
		mk(3, 0.2, 2, 10),
	}
	right, err := RunFleet(NewFirstFit(), l, testFleet(), RightSize(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Right-sizing opens a small (0.25) for item 1; items 2 and 3 do not
	// fit it -> three smalls.
	if right.NumBins() != 3 {
		t.Fatalf("right-size bins = %d, want 3", right.NumBins())
	}
	large, err := RunFleet(NewFirstFit(), l, testFleet(), LargestType(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if large.NumBins() != 1 {
		t.Fatalf("largest-type bins = %d, want 1", large.NumBins())
	}
}

func TestRunFleetRejectsOversizeAndBadFleet(t *testing.T) {
	small := []ServerType{{Name: "s", Capacity: 0.25}}
	if _, err := RunFleet(NewFirstFit(), item.List{mk(1, 0.5, 0, 1)}, small, nil, nil); err == nil {
		t.Fatal("item above every tier must be rejected")
	}
	if _, err := RunFleet(NewFirstFit(), item.List{mk(1, 0.5, 0, 1)}, nil, nil, nil); err == nil {
		t.Fatal("empty fleet must be rejected")
	}
	bad := []ServerType{{Name: "x", Capacity: 1.5}}
	if _, err := RunFleet(NewFirstFit(), item.List{mk(1, 0.5, 0, 1)}, bad, nil, nil); err == nil {
		t.Fatal("capacity > 1 must be rejected")
	}
}

func TestRunFleetBadChooser(t *testing.T) {
	l := item.List{mk(1, 0.5, 0, 1)}
	tooSmall := func(a Arrival, fleet []ServerType) int { return 0 } // smallest tier = 0.25
	if _, err := RunFleet(NewFirstFit(), l, testFleet(), tooSmall, nil); err == nil {
		t.Fatal("chooser picking a too-small tier must error")
	}
	outOfRange := func(a Arrival, fleet []ServerType) int { return 99 }
	if _, err := RunFleet(NewFirstFit(), l, testFleet(), outOfRange, nil); err == nil {
		t.Fatal("out-of-range tier must error")
	}
}

func TestRunFleetSingleUnitTierEqualsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	l := randomInstance(rng, 120, 8)
	unit := []ServerType{{Name: "unit", Capacity: 1}}
	fleet, err := RunFleet(NewFirstFit(), l, unit, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := MustRun(NewFirstFit(), l, nil)
	if fleet.TotalUsage != plain.TotalUsage || fleet.NumBins() != plain.NumBins() {
		t.Fatalf("unit fleet diverged from plain run: %g/%d vs %g/%d",
			fleet.TotalUsage, fleet.NumBins(), plain.TotalUsage, plain.NumBins())
	}
}

func TestRunFleetWithKeepAlive(t *testing.T) {
	l := item.List{
		mk(1, 0.2, 0, 1),
		mk(2, 0.2, 2, 3),
	}
	res, err := RunFleet(NewFirstFit(), l, testFleet(), RightSize(), &Options{KeepAlive: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBins() != 1 {
		t.Fatalf("bins = %d, want 1 (lingering small reused)", res.NumBins())
	}
}

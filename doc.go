// Package dbp implements MinUsageTime Dynamic Bin Packing — online
// dispatch of jobs with unknown departure times onto rented servers so as
// to minimize total server usage time — reproducing "On First Fit Bin
// Packing for Online Cloud Server Allocation" (Tang, Li, Ren, Cai; IEEE
// IPDPS 2016).
//
// The paper's main result (Theorem 1) is that First Fit is
// (mu+4)-competitive for this problem, where mu is the ratio of the
// longest to the shortest job duration — within an additive constant 4 of
// the universal lower bound mu that no online algorithm can beat. This
// module provides:
//
//   - the online packing algorithms the paper discusses (First Fit, Best
//     Fit, Worst Fit, Last Fit, Next Fit, Random Fit, and size-classifying
//     Hybrid variants), run by a deterministic event simulator
//     (Run/MustRun) or driven job-by-job (NewDispatcher);
//   - the offline optimum OPT_total(R) = ∫ OPT(R,t) dt, solved exactly by
//     branch and bound per timeline segment or bracketed with certified
//     bounds (Opt, OptExact), plus the paper's Propositions 1–2;
//   - workload generators (Poisson arrivals with pluggable size/duration
//     distributions, a synthetic cloud-gaming catalog) and the paper's
//     adversarial lower-bound constructions (Sec. VIII's Next Fit
//     instance, the gap-seal trap, an adaptive Best Fit relay);
//   - competitive-ratio measurement (MeasureRatio) and the theoretical
//     bounds landscape (Theorem1Bound and friends);
//   - trace I/O (CSV/JSON) and pay-as-you-go billing models that map
//     usage time to renting cost.
//
// Quick start:
//
//	jobs := dbp.GenerateUniform(100, 2.0, 8.0, 1) // n, rate, mu, seed
//	res, err := dbp.Run(dbp.FirstFit(), jobs)
//	if err != nil { ... }
//	fmt.Println(res.TotalUsage, res.NumBins())
//	ratio, _, _ := dbp.MeasureRatio(dbp.FirstFit(), jobs)
//	fmt.Println(ratio.Hi(), "<=", dbp.Theorem1Bound(jobs.Mu()))
//
// See examples/ for runnable programs and DESIGN.md for the experiment
// index reproducing every quantitative claim of the paper.
package dbp

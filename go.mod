module dbp

go 1.22
